"""Tests for the HTTP/JSON service: cache backends, pool, handlers, server."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Problem, RunReport
from repro.service import (
    JsonDirCache,
    NullCache,
    PoolSaturated,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceState,
    SqliteCache,
    WorkerPool,
    make_cache,
    start_server,
)
from repro.service.pool import Job
from repro.service.wire import WireError, parse_problem

FAST_PROBLEM = Problem(
    "3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=10.0
)


# ---------------------------------------------------------------------------
# Canonical hashing (the cache key)
# ---------------------------------------------------------------------------


class TestProblemHashing:
    def test_equal_problems_hash_equal(self):
        a = Problem("3 digits", positive=["123"], negative=["12"])
        b = Problem.from_json(a.to_json())
        assert a.cache_key() == b.cache_key()

    def test_hash_is_field_order_independent(self):
        data = FAST_PROBLEM.to_dict()
        reordered = {key: data[key] for key in reversed(list(data))}
        assert Problem.from_dict(reordered).cache_key() == FAST_PROBLEM.cache_key()

    def test_different_problems_hash_differently(self):
        a = Problem("3 digits", positive=["123"])
        b = Problem("3 digits", positive=["124"])
        c = Problem("3 digits", positive=["123"], budget=5.0)
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_key_is_sha256_hex(self):
        key = FAST_PROBLEM.cache_key()
        assert len(key) == 64 and all(ch in "0123456789abcdef" for ch in key)


# ---------------------------------------------------------------------------
# Cache backends
# ---------------------------------------------------------------------------


@pytest.fixture(params=["json", "sqlite"])
def cache(request, tmp_path):
    if request.param == "json":
        backend = JsonDirCache(tmp_path / "cache", max_entries=3)
    else:
        backend = SqliteCache(tmp_path / "cache.sqlite", max_entries=3)
    yield backend
    backend.close()


class TestResultCache:
    def test_miss_then_hit(self, cache):
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, {"solved": True})
        assert cache.get("a" * 64) == {"solved": True}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1

    def test_overwrite_same_key(self, cache):
        cache.put("b" * 64, {"v": 1})
        cache.put("b" * 64, {"v": 2})
        assert cache.get("b" * 64) == {"v": 2}
        assert len(cache) == 1

    def test_lru_eviction_bound(self, cache):
        for index in range(5):
            cache.put(f"{index}" * 64, {"v": index})
            time.sleep(0.01)  # distinct mtimes for the json backend
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 2
        # The oldest entries were evicted, the newest survive.
        assert cache.get("0" * 64) is None
        assert cache.get("4" * 64) == {"v": 4}

    def test_lru_recency_refresh_on_hit(self, cache):
        for index in range(3):
            cache.put(f"{index}" * 64, {"v": index})
            time.sleep(0.01)
        assert cache.get("0" * 64) is not None  # refresh the oldest
        time.sleep(0.01)
        cache.put("9" * 64, {"v": 9})  # evicts "1", not the refreshed "0"
        assert cache.get("0" * 64) is not None
        assert cache.get("1" * 64) is None

    def test_persistence_across_instances(self, cache, tmp_path):
        cache.put("c" * 64, {"v": 3})
        if isinstance(cache, JsonDirCache):
            reopened = JsonDirCache(tmp_path / "cache", max_entries=3)
        else:
            cache.close()
            reopened = SqliteCache(tmp_path / "cache.sqlite", max_entries=3)
        assert reopened.get("c" * 64) == {"v": 3}
        reopened.close()

    def test_malformed_key_rejected(self, tmp_path):
        backend = JsonDirCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            backend.put("../escape", {})

    def test_null_cache_never_stores(self):
        cache = NullCache()
        cache.put("d" * 64, {"v": 1})
        assert cache.get("d" * 64) is None
        assert cache.stats()["entries"] == 0

    def test_make_cache_registry(self, tmp_path):
        assert isinstance(make_cache("null", tmp_path), NullCache)
        with pytest.raises(ValueError):
            make_cache("redis", tmp_path)


# ---------------------------------------------------------------------------
# Wire validation
# ---------------------------------------------------------------------------


class TestWire:
    def test_parse_round_trip(self):
        parsed = parse_problem(FAST_PROBLEM.to_json().encode())
        assert parsed == FAST_PROBLEM

    def test_rejects_non_json(self):
        with pytest.raises(WireError):
            parse_problem(b"not json")

    def test_rejects_non_object(self):
        with pytest.raises(WireError):
            parse_problem(b"[1, 2]")

    def test_rejects_bad_examples(self):
        with pytest.raises(WireError):
            parse_problem(b'{"positive": [123]}')

    def test_rejects_bare_string_examples(self):
        # tuple("123") would silently become ('1','2','3') — a different
        # problem with a legitimate-looking cache key.
        with pytest.raises(WireError) as info:
            parse_problem(b'{"positive": "123"}')
        assert "array" in str(info.value)

    def test_rejects_bad_budget(self):
        with pytest.raises(WireError):
            parse_problem(b'{"budget": -1}')

    def test_rejects_over_budget(self):
        body = json.dumps({"description": "x", "budget": 500.0}).encode()
        with pytest.raises(WireError) as info:
            parse_problem(body, max_budget=120.0)
        assert info.value.code == "budget_too_large"

    def test_rejects_oversize_body(self):
        with pytest.raises(WireError) as info:
            parse_problem(b"x" * (2 << 20))
        assert info.value.status == 413


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


def _blocking_session_factory(release: threading.Event):
    """Sessions whose iter_solutions blocks until ``release`` is set."""

    class BlockingSession:
        last_report = None

        def iter_solutions(self, problem, cancel=None):
            while not release.is_set() and not (cancel and cancel.cancelled):
                time.sleep(0.005)
            self.last_report = RunReport(problem=problem)
            return iter(())

    return BlockingSession


class TestWorkerPool:
    def test_back_pressure_raises_when_saturated(self):
        release = threading.Event()
        factory = _blocking_session_factory(release)
        pool = WorkerPool(lambda: factory(), workers=1, queue_size=1)
        try:
            first = Job(FAST_PROBLEM)
            pool.submit(first)
            deadline = time.monotonic() + 5.0
            while first.status == "queued" and time.monotonic() < deadline:
                time.sleep(0.005)  # wait for the worker to pick it up
            pool.submit(Job(FAST_PROBLEM))  # fills the queue slot
            with pytest.raises(PoolSaturated):
                pool.submit(Job(FAST_PROBLEM))
            assert pool.stats()["rejected"] == 1
        finally:
            release.set()
            pool.close()

    def test_close_cancels_queued_and_running(self):
        release = threading.Event()
        factory = _blocking_session_factory(release)
        pool = WorkerPool(lambda: factory(), workers=1, queue_size=4)
        running = Job(FAST_PROBLEM)
        queued = Job(FAST_PROBLEM)
        pool.submit(running)
        deadline = time.monotonic() + 5.0
        while running.status == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        pool.submit(queued)
        pool.close()
        assert queued.status == "cancelled"
        assert running.terminal

    def test_write_through_happens_before_job_is_done(self):
        # A client woken by job.wait() may immediately re-send the identical
        # problem; the cache write-through must already be visible by then.
        events = []

        class InstantSession:
            last_report = None

            def iter_solutions(self, problem, cancel=None):
                self.last_report = RunReport(problem=problem)
                return iter(())

        pool = WorkerPool(
            lambda: InstantSession(),
            workers=1,
            queue_size=2,
            on_complete=lambda key, report: events.append("cached"),
        )
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            events.append("done-visible")
            assert events == ["cached", "done-visible"]
        finally:
            pool.close()

    def test_broken_session_factory_fails_jobs_not_threads(self):
        pool = WorkerPool(
            lambda: (_ for _ in ()).throw(RuntimeError("no parser")),
            workers=1,
            queue_size=2,
        )
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            assert job.status == "failed"
            assert "no parser" in job.error
        finally:
            pool.close()

    def test_failed_job_records_error(self):
        class ExplodingSession:
            def iter_solutions(self, problem, cancel=None):
                raise RuntimeError("boom")
                yield  # pragma: no cover

        pool = WorkerPool(lambda: ExplodingSession(), workers=1, queue_size=2)
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            assert job.status == "failed"
            assert "boom" in job.error
            assert pool.stats()["failed"] == 1
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# The live HTTP server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0, workers=2, cache_backend="json", cache_path=tmp, sketches=8
        )
        live = start_server(config)
        yield live
        live.close()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


class TestHttpService:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["schema"] == 1

    def test_solve_then_cache_hit(self, client):
        problem = Problem(
            "3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=10.0
        )
        cold = client.solve(problem)
        assert cold.solved
        assert cold.provenance == "engine"
        assert cold.cache_key == problem.cache_key()
        warm = client.solve(problem)
        assert warm.provenance == "cache"
        assert warm.cache_key == problem.cache_key()
        assert [s.regex for s in warm.solutions] == [s.regex for s in cold.solutions]
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1

    def test_async_job_lifecycle(self, client):
        record = client.submit(
            Problem("2 digits", positive=["12", "34"], negative=["1", "abc"], budget=10.0)
        )
        assert record["status"] in ("queued", "running", "done")
        job_id = record["job_id"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            record = client.job(job_id)
            if record["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert record["status"] == "done"
        assert record["solutions"]
        report = RunReport.from_dict(record["report"])
        assert report.solved

    def test_unsolved_reports_are_not_cached(self, client):
        # A vanishingly small budget: the engine deterministically runs out
        # of time before solving.  An unsolved-within-budget outcome must
        # not poison the cache (a loaded machine's failure is not a fact
        # about the problem).  Contradictory example sets no longer reach
        # the engine at all — they are rejected with HTTP 422 up front.
        problem = Problem("3 digits", positive=["xyz"], negative=["xy"], budget=0.001)
        first = client.solve(problem)
        assert not first.solved
        second = client.solve(problem)
        assert second.provenance == "engine"  # re-ran, not served from cache

    def test_submit_of_cached_problem_is_born_done(self, client):
        problem = Problem(
            "4 digits", positive=["1234", "5678"], negative=["123", "x"], budget=10.0
        )
        assert client.solve(problem).solved  # populate the cache
        record = client.submit(problem)
        assert record["status"] == "done"
        assert record["report"]["provenance"] == "cache"

    def test_iter_solutions_streams(self, client):
        problem = Problem(
            "5 digits", positive=["12345"], negative=["1234"], budget=10.0
        )
        solutions = list(client.iter_solutions(problem))
        assert solutions
        assert client.last_job["status"] == "done"

    def test_cancel_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.cancel("f" * 32)
        assert info.value.status == 404

    def test_malformed_body_is_400(self, client, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/solve",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["code"] == "bad_request"

    def test_over_budget_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.solve(Problem("3 digits", positive=["123"], budget=500.0))
        assert info.value.code == "budget_too_large"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v2/everything")
        assert info.value.status == 404

    def test_stats_shape(self, client):
        stats = client.stats()
        assert {"cache", "pool", "requests", "jobs", "uptime_seconds"} <= set(stats)
        assert stats["pool"]["workers"] == 2
        assert stats["cache"]["backend"] == "json"


class TestLintEndpoint:
    UNSAT = Problem(
        "impossible", positive=["abc", "12"], negative=["abc"], budget=5.0
    )

    def test_lint_satisfiable_problem(self, client):
        body = client.lint(FAST_PROBLEM)
        assert body["schema"] == 1
        assert body["satisfiable"] is True
        assert isinstance(body["diagnostics"], list)

    def test_lint_unsatisfiable_problem_is_200(self, client):
        # Linting an unsatisfiable problem is the endpoint's whole point, so
        # it answers 200 — only solve/submit turn the verdict into a 422.
        body = client.lint(self.UNSAT)
        assert body["satisfiable"] is False
        codes = {diagnostic["code"] for diagnostic in body["diagnostics"]}
        assert "conflicting-examples" in codes

    def test_lint_with_sketches(self, client):
        problem = Problem(
            "3 digits", positive=["123", "456"], negative=["12"], budget=5.0
        )
        body = client.lint(problem, sketches=["Repeat(Hole(<num>),3)"])
        assert body["satisfiable"] is True
        for diagnostic in body["diagnostics"]:
            assert {"code", "severity", "path", "message"} <= set(diagnostic)

    def test_lint_sketch_conflict_is_reported(self, client):
        # <let>* can never match a digits-only positive example.
        problem = Problem(
            "letters", positive=["123"], negative=["abc"], budget=5.0
        )
        body = client.lint(problem, sketches=["KleeneStar(<let>)"])
        codes = {diagnostic["code"] for diagnostic in body["diagnostics"]}
        assert "sketch-rejects-positive" in codes

    def test_solve_unsatisfiable_is_422(self, client):
        with pytest.raises(ServiceError) as info:
            client.solve(self.UNSAT)
        assert info.value.status == 422
        assert info.value.code == "unsatisfiable"
        diagnostics = info.value.payload["diagnostics"]
        assert diagnostics and diagnostics[0]["code"] == "unsatisfiable"
        assert diagnostics[0]["severity"] == "error"

    def test_submit_unsatisfiable_is_422(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit(self.UNSAT)
        assert info.value.status == 422
        assert info.value.code == "unsatisfiable"

    def test_rejected_problem_never_reaches_pool_or_cache(self, client):
        before = client.stats()
        with pytest.raises(ServiceError):
            client.solve(self.UNSAT)
        after = client.stats()
        # No job was queued and nothing was written to or read from the
        # result cache for the rejected problem.
        assert after["jobs"]["tracked"] == before["jobs"]["tracked"]
        assert after["cache"]["misses"] == before["cache"]["misses"]


class TestBackPressureHttp:
    def test_saturated_service_answers_429(self, tmp_path):
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=1, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        # Swap the pool for one whose sessions block until released, so the
        # queue fills deterministically.
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=1)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            running = client.submit(FAST_PROBLEM)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.job(running["job_id"])["status"] == "running":
                    break
                time.sleep(0.01)
            client.submit(Problem("x digits", positive=["9"], budget=5.0))
            with pytest.raises(ServiceError) as info:
                client.submit(Problem("y digits", positive=["8"], budget=5.0))
            assert info.value.status == 429
            assert info.value.code == "saturated"
        finally:
            release.set()
            live.close()

    def test_identical_concurrent_requests_coalesce(self, tmp_path):
        # Ten users asking for the same regex at once must cost one engine
        # run: later identical submissions attach to the in-flight job.
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=2, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=2)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            first = client.submit(FAST_PROBLEM)
            again = client.submit(FAST_PROBLEM)
            assert again["job_id"] == first["job_id"]
            # A *different* problem gets its own job.
            other = client.submit(Problem("2 digits", positive=["12"], budget=5.0))
            assert other["job_id"] != first["job_id"]
            assert state.pool.stats()["submitted"] == 2
        finally:
            release.set()
            live.close()

    def test_job_cancellation(self, tmp_path):
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=4, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=4)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            record = client.submit(FAST_PROBLEM)
            client.cancel(record["job_id"])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                record = client.job(record["job_id"])
                if record["status"] in ("cancelled", "done", "failed"):
                    break
                time.sleep(0.01)
            assert record["status"] == "cancelled"
        finally:
            release.set()
            live.close()
