"""Tests for the HTTP/JSON service: cache backends, pool, handlers, server."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Problem, RunReport
from repro.service import (
    JsonDirCache,
    NullCache,
    PoolSaturated,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceState,
    SqliteCache,
    WorkerPool,
    make_cache,
    start_server,
)
from repro.service.pool import Job
from repro.service.wire import WireError, parse_problem

FAST_PROBLEM = Problem(
    "3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=10.0
)


# ---------------------------------------------------------------------------
# Canonical hashing (the cache key)
# ---------------------------------------------------------------------------


class TestProblemHashing:
    def test_equal_problems_hash_equal(self):
        a = Problem("3 digits", positive=["123"], negative=["12"])
        b = Problem.from_json(a.to_json())
        assert a.cache_key() == b.cache_key()

    def test_hash_is_field_order_independent(self):
        data = FAST_PROBLEM.to_dict()
        reordered = {key: data[key] for key in reversed(list(data))}
        assert Problem.from_dict(reordered).cache_key() == FAST_PROBLEM.cache_key()

    def test_different_problems_hash_differently(self):
        a = Problem("3 digits", positive=["123"])
        b = Problem("3 digits", positive=["124"])
        c = Problem("3 digits", positive=["123"], budget=5.0)
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_key_is_sha256_hex(self):
        key = FAST_PROBLEM.cache_key()
        assert len(key) == 64 and all(ch in "0123456789abcdef" for ch in key)


# ---------------------------------------------------------------------------
# Cache backends
# ---------------------------------------------------------------------------


@pytest.fixture(params=["json", "sqlite"])
def cache(request, tmp_path):
    if request.param == "json":
        backend = JsonDirCache(tmp_path / "cache", max_entries=3)
    else:
        backend = SqliteCache(tmp_path / "cache.sqlite", max_entries=3)
    yield backend
    backend.close()


class TestResultCache:
    def test_miss_then_hit(self, cache):
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, {"solved": True})
        assert cache.get("a" * 64) == {"solved": True}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1

    def test_overwrite_same_key(self, cache):
        cache.put("b" * 64, {"v": 1})
        cache.put("b" * 64, {"v": 2})
        assert cache.get("b" * 64) == {"v": 2}
        assert len(cache) == 1

    def test_lru_eviction_bound(self, cache):
        for index in range(5):
            cache.put(f"{index}" * 64, {"v": index})
            time.sleep(0.01)  # distinct mtimes for the json backend
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 2
        # The oldest entries were evicted, the newest survive.
        assert cache.get("0" * 64) is None
        assert cache.get("4" * 64) == {"v": 4}

    def test_lru_recency_refresh_on_hit(self, cache):
        for index in range(3):
            cache.put(f"{index}" * 64, {"v": index})
            time.sleep(0.01)
        assert cache.get("0" * 64) is not None  # refresh the oldest
        time.sleep(0.01)
        cache.put("9" * 64, {"v": 9})  # evicts "1", not the refreshed "0"
        assert cache.get("0" * 64) is not None
        assert cache.get("1" * 64) is None

    def test_persistence_across_instances(self, cache, tmp_path):
        cache.put("c" * 64, {"v": 3})
        if isinstance(cache, JsonDirCache):
            reopened = JsonDirCache(tmp_path / "cache", max_entries=3)
        else:
            cache.close()
            reopened = SqliteCache(tmp_path / "cache.sqlite", max_entries=3)
        assert reopened.get("c" * 64) == {"v": 3}
        reopened.close()

    def test_malformed_key_rejected(self, tmp_path):
        backend = JsonDirCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            backend.put("../escape", {})

    def test_null_cache_never_stores(self):
        cache = NullCache()
        cache.put("d" * 64, {"v": 1})
        assert cache.get("d" * 64) is None
        assert cache.stats()["entries"] == 0

    def test_make_cache_registry(self, tmp_path):
        assert isinstance(make_cache("null", tmp_path), NullCache)
        with pytest.raises(ValueError):
            make_cache("redis", tmp_path)


# ---------------------------------------------------------------------------
# Wire validation
# ---------------------------------------------------------------------------


class TestWire:
    def test_parse_round_trip(self):
        parsed = parse_problem(FAST_PROBLEM.to_json().encode())
        assert parsed == FAST_PROBLEM

    def test_rejects_non_json(self):
        with pytest.raises(WireError):
            parse_problem(b"not json")

    def test_rejects_non_object(self):
        with pytest.raises(WireError):
            parse_problem(b"[1, 2]")

    def test_rejects_bad_examples(self):
        with pytest.raises(WireError):
            parse_problem(b'{"positive": [123]}')

    def test_rejects_bare_string_examples(self):
        # tuple("123") would silently become ('1','2','3') — a different
        # problem with a legitimate-looking cache key.
        with pytest.raises(WireError) as info:
            parse_problem(b'{"positive": "123"}')
        assert "array" in str(info.value)

    def test_rejects_bad_budget(self):
        with pytest.raises(WireError):
            parse_problem(b'{"budget": -1}')

    def test_rejects_over_budget(self):
        body = json.dumps({"description": "x", "budget": 500.0}).encode()
        with pytest.raises(WireError) as info:
            parse_problem(body, max_budget=120.0)
        assert info.value.code == "budget_too_large"

    def test_rejects_oversize_body(self):
        with pytest.raises(WireError) as info:
            parse_problem(b"x" * (2 << 20))
        assert info.value.status == 413


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


def _blocking_session_factory(release: threading.Event):
    """Sessions whose iter_solutions blocks until ``release`` is set."""

    class BlockingSession:
        last_report = None

        def iter_solutions(self, problem, cancel=None):
            while not release.is_set() and not (cancel and cancel.cancelled):
                time.sleep(0.005)
            self.last_report = RunReport(problem=problem)
            return iter(())

    return BlockingSession


class TestWorkerPool:
    def test_back_pressure_raises_when_saturated(self):
        release = threading.Event()
        factory = _blocking_session_factory(release)
        pool = WorkerPool(lambda: factory(), workers=1, queue_size=1)
        try:
            first = Job(FAST_PROBLEM)
            pool.submit(first)
            deadline = time.monotonic() + 5.0
            while first.status == "queued" and time.monotonic() < deadline:
                time.sleep(0.005)  # wait for the worker to pick it up
            pool.submit(Job(FAST_PROBLEM))  # fills the queue slot
            with pytest.raises(PoolSaturated):
                pool.submit(Job(FAST_PROBLEM))
            assert pool.stats()["rejected"] == 1
        finally:
            release.set()
            pool.close()

    def test_close_cancels_queued_and_running(self):
        release = threading.Event()
        factory = _blocking_session_factory(release)
        pool = WorkerPool(lambda: factory(), workers=1, queue_size=4)
        running = Job(FAST_PROBLEM)
        queued = Job(FAST_PROBLEM)
        pool.submit(running)
        deadline = time.monotonic() + 5.0
        while running.status == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        pool.submit(queued)
        pool.close()
        assert queued.status == "cancelled"
        assert running.terminal

    def test_write_through_happens_before_job_is_done(self):
        # A client woken by job.wait() may immediately re-send the identical
        # problem; the cache write-through must already be visible by then.
        events = []

        class InstantSession:
            last_report = None

            def iter_solutions(self, problem, cancel=None):
                self.last_report = RunReport(problem=problem)
                return iter(())

        pool = WorkerPool(
            lambda: InstantSession(),
            workers=1,
            queue_size=2,
            on_complete=lambda key, report: events.append("cached"),
        )
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            events.append("done-visible")
            assert events == ["cached", "done-visible"]
        finally:
            pool.close()

    def test_broken_session_factory_fails_jobs_not_threads(self):
        pool = WorkerPool(
            lambda: (_ for _ in ()).throw(RuntimeError("no parser")),
            workers=1,
            queue_size=2,
        )
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            assert job.status == "failed"
            assert "no parser" in job.error
        finally:
            pool.close()

    def test_failed_job_records_error(self):
        class ExplodingSession:
            def iter_solutions(self, problem, cancel=None):
                raise RuntimeError("boom")
                yield  # pragma: no cover

        pool = WorkerPool(lambda: ExplodingSession(), workers=1, queue_size=2)
        try:
            job = Job(FAST_PROBLEM)
            pool.submit(job)
            assert job.wait(timeout=5.0)
            assert job.status == "failed"
            assert "boom" in job.error
            assert pool.stats()["failed"] == 1
        finally:
            pool.close()

    def test_finish_is_first_wins(self):
        # The watchdog and the worker may both try to settle one job; the
        # second transition must be a no-op, not an overwrite.
        job = Job(FAST_PROBLEM)
        assert job.finish("failed", error="watchdog: wedged") is True
        assert job.finish("done", report={"solved": True}) is False
        assert job.status == "failed"
        assert job.report is None
        assert "watchdog" in job.error


# ---------------------------------------------------------------------------
# The live HTTP server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0, workers=2, cache_backend="json", cache_path=tmp, sketches=8
        )
        live = start_server(config)
        yield live
        live.close()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


class TestHttpService:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["schema"] == 1
        assert body["subsystems"] == {"cache": "ok", "pool": "ok"}

    def test_solve_then_cache_hit(self, client):
        problem = Problem(
            "3 digits", positive=["123", "456"], negative=["12", "abcd"], budget=10.0
        )
        cold = client.solve(problem)
        assert cold.solved
        assert cold.provenance == "engine"
        assert cold.cache_key == problem.cache_key()
        warm = client.solve(problem)
        assert warm.provenance == "cache"
        assert warm.cache_key == problem.cache_key()
        assert [s.regex for s in warm.solutions] == [s.regex for s in cold.solutions]
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1

    def test_async_job_lifecycle(self, client):
        record = client.submit(
            Problem("2 digits", positive=["12", "34"], negative=["1", "abc"], budget=10.0)
        )
        assert record["status"] in ("queued", "running", "done")
        job_id = record["job_id"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            record = client.job(job_id)
            if record["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert record["status"] == "done"
        assert record["solutions"]
        report = RunReport.from_dict(record["report"])
        assert report.solved

    def test_unsolved_reports_are_not_cached(self, client):
        # A vanishingly small budget: the engine deterministically runs out
        # of time before solving.  An unsolved-within-budget outcome must
        # not poison the cache (a loaded machine's failure is not a fact
        # about the problem).  Contradictory example sets no longer reach
        # the engine at all — they are rejected with HTTP 422 up front.
        problem = Problem("3 digits", positive=["xyz"], negative=["xy"], budget=0.001)
        first = client.solve(problem)
        assert not first.solved
        second = client.solve(problem)
        assert second.provenance == "engine"  # re-ran, not served from cache

    def test_submit_of_cached_problem_is_born_done(self, client):
        problem = Problem(
            "4 digits", positive=["1234", "5678"], negative=["123", "x"], budget=10.0
        )
        assert client.solve(problem).solved  # populate the cache
        record = client.submit(problem)
        assert record["status"] == "done"
        assert record["report"]["provenance"] == "cache"

    def test_iter_solutions_streams(self, client):
        problem = Problem(
            "5 digits", positive=["12345"], negative=["1234"], budget=10.0
        )
        solutions = list(client.iter_solutions(problem))
        assert solutions
        assert client.last_job["status"] == "done"

    def test_cancel_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.cancel("f" * 32)
        assert info.value.status == 404

    def test_malformed_body_is_400(self, client, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/solve",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["code"] == "bad_request"

    def test_over_budget_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.solve(Problem("3 digits", positive=["123"], budget=500.0))
        assert info.value.code == "budget_too_large"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v2/everything")
        assert info.value.status == 404

    def test_stats_shape(self, client):
        stats = client.stats()
        assert {"cache", "pool", "requests", "jobs", "uptime_seconds"} <= set(stats)
        assert stats["pool"]["workers"] == 2
        assert stats["cache"]["backend"] == "json"


class TestLintEndpoint:
    UNSAT = Problem(
        "impossible", positive=["abc", "12"], negative=["abc"], budget=5.0
    )

    def test_lint_satisfiable_problem(self, client):
        body = client.lint(FAST_PROBLEM)
        assert body["schema"] == 1
        assert body["satisfiable"] is True
        assert isinstance(body["diagnostics"], list)

    def test_lint_unsatisfiable_problem_is_200(self, client):
        # Linting an unsatisfiable problem is the endpoint's whole point, so
        # it answers 200 — only solve/submit turn the verdict into a 422.
        body = client.lint(self.UNSAT)
        assert body["satisfiable"] is False
        codes = {diagnostic["code"] for diagnostic in body["diagnostics"]}
        assert "conflicting-examples" in codes

    def test_lint_with_sketches(self, client):
        problem = Problem(
            "3 digits", positive=["123", "456"], negative=["12"], budget=5.0
        )
        body = client.lint(problem, sketches=["Repeat(Hole(<num>),3)"])
        assert body["satisfiable"] is True
        for diagnostic in body["diagnostics"]:
            assert {"code", "severity", "path", "message"} <= set(diagnostic)

    def test_lint_sketch_conflict_is_reported(self, client):
        # <let>* can never match a digits-only positive example.
        problem = Problem(
            "letters", positive=["123"], negative=["abc"], budget=5.0
        )
        body = client.lint(problem, sketches=["KleeneStar(<let>)"])
        codes = {diagnostic["code"] for diagnostic in body["diagnostics"]}
        assert "sketch-rejects-positive" in codes

    def test_solve_unsatisfiable_is_422(self, client):
        with pytest.raises(ServiceError) as info:
            client.solve(self.UNSAT)
        assert info.value.status == 422
        assert info.value.code == "unsatisfiable"
        diagnostics = info.value.payload["diagnostics"]
        assert diagnostics and diagnostics[0]["code"] == "unsatisfiable"
        assert diagnostics[0]["severity"] == "error"

    def test_submit_unsatisfiable_is_422(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit(self.UNSAT)
        assert info.value.status == 422
        assert info.value.code == "unsatisfiable"

    def test_rejected_problem_never_reaches_pool_or_cache(self, client):
        before = client.stats()
        with pytest.raises(ServiceError):
            client.solve(self.UNSAT)
        after = client.stats()
        # No job was queued and nothing was written to or read from the
        # result cache for the rejected problem.
        assert after["jobs"]["tracked"] == before["jobs"]["tracked"]
        assert after["cache"]["misses"] == before["cache"]["misses"]


class TestBackPressureHttp:
    def test_saturated_service_answers_429(self, tmp_path):
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=1, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        # Swap the pool for one whose sessions block until released, so the
        # queue fills deterministically.
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=1)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            # retries=0: this test wants to SEE the 429, not have the
            # client's backoff absorb it.
            client = ServiceClient(f"http://{host}:{port}", retries=0)
            running = client.submit(FAST_PROBLEM)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.job(running["job_id"])["status"] == "running":
                    break
                time.sleep(0.01)
            client.submit(Problem("x digits", positive=["9"], budget=5.0))
            with pytest.raises(ServiceError) as info:
                client.submit(Problem("y digits", positive=["8"], budget=5.0))
            assert info.value.status == 429
            assert info.value.code == "saturated"
        finally:
            release.set()
            live.close()

    def test_identical_concurrent_requests_coalesce(self, tmp_path):
        # Ten users asking for the same regex at once must cost one engine
        # run: later identical submissions attach to the in-flight job.
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=2, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=2)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            first = client.submit(FAST_PROBLEM)
            again = client.submit(FAST_PROBLEM)
            assert again["job_id"] == first["job_id"]
            # A *different* problem gets its own job.
            other = client.submit(Problem("2 digits", positive=["12"], budget=5.0))
            assert other["job_id"] != first["job_id"]
            assert state.pool.stats()["submitted"] == 2
        finally:
            release.set()
            live.close()

    def test_job_cancellation(self, tmp_path):
        release = threading.Event()
        config = ServiceConfig(
            port=0, workers=1, queue_size=4, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=4)
        live = start_server(config, state=state)
        try:
            host, port = live.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            record = client.submit(FAST_PROBLEM)
            client.cancel(record["job_id"])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                record = client.job(record["job_id"])
                if record["status"] in ("cancelled", "done", "failed"):
                    break
                time.sleep(0.01)
            assert record["status"] == "cancelled"
        finally:
            release.set()
            live.close()


# ---------------------------------------------------------------------------
# Batch records (unit)
# ---------------------------------------------------------------------------


class TestBatchRecord:
    def test_append_update_counts_done(self, tmp_path):
        from repro.service.batch import BatchRecord

        record = BatchRecord(path=tmp_path / "b.json")
        first = record.append_item("queued", cache_key="k0")
        second = record.append_item("cached", cache_key="k1", regex="<num>")
        assert (first, second) == (0, 1)
        assert len(record) == 2
        assert not record.done
        record.update_item(0, "solved", regex="Repeat(<num>,3)")
        assert record.done
        counts = record.counts()
        assert counts["solved"] == 1 and counts["cached"] == 1
        assert record.items[1]["regex"] == "<num>"

    def test_save_load_round_trip(self, tmp_path):
        from repro.service.batch import BatchRecord

        record = BatchRecord(path=tmp_path / "b.json")
        record.append_item("queued", cache_key="k0")
        record.append_item("failed", cache_key="", error="bad json")
        record.save()
        restored = BatchRecord.load(tmp_path / "b.json")
        assert restored.batch_id == record.batch_id
        assert restored.items == record.items

    def test_live_claims_are_not_persisted(self, tmp_path):
        # The restart-resume contract: a queued item whose job died with the
        # process must come back eligible for re-ingestion.
        from repro.service.batch import BatchRecord

        record = BatchRecord(path=tmp_path / "b.json")
        record.append_item("queued", cache_key="k0")
        record.mark_live(0)
        assert not record.needs_reingest(0)
        record.save()
        restored = BatchRecord.load(tmp_path / "b.json")
        assert restored.needs_reingest(0)

    def test_terminal_update_discards_live_claim(self, tmp_path):
        from repro.service.batch import BatchRecord

        record = BatchRecord()
        record.append_item("queued")
        record.mark_live(0)
        record.update_item(0, "solved")
        assert 0 not in record.live

    def test_release_reopens_queued_item(self):
        from repro.service.batch import BatchRecord

        record = BatchRecord()
        record.append_item("queued")
        record.mark_live(0)
        record.release(0)
        assert record.needs_reingest(0)

    def test_page_slices(self):
        from repro.service.batch import BatchRecord

        record = BatchRecord()
        for i in range(5):
            record.append_item("cached", cache_key=f"k{i}")
        page = record.page(offset=2, limit=2)
        assert [item["index"] for item in page["items"]] == [2, 3]
        assert page["total"] == 5 and page["done"]


class TestBatchStore:
    def test_create_persists_immediately(self, tmp_path):
        from repro.service.batch import BatchStore

        store = BatchStore(tmp_path / "batches")
        record = store.create()
        assert (tmp_path / "batches" / f"{record.batch_id}.json").is_file()
        assert store.get(record.batch_id) is record

    def test_faults_in_from_disk(self, tmp_path):
        # A "restarted" store (fresh instance, same directory) still serves
        # batches the previous process created.
        from repro.service.batch import BatchStore

        store = BatchStore(tmp_path / "batches")
        record = store.create()
        record.append_item("solved", cache_key="k", regex="<num>")
        record.save()
        reborn = BatchStore(tmp_path / "batches")
        assert len(reborn) == 0
        loaded = reborn.get(record.batch_id)
        assert loaded is not None
        assert loaded.items == record.items

    def test_unknown_id_is_none(self, tmp_path):
        from repro.service.batch import BatchStore

        store = BatchStore(tmp_path / "batches")
        assert store.get("f" * 32) is None


# ---------------------------------------------------------------------------
# Batch ingestion over HTTP
# ---------------------------------------------------------------------------


@pytest.fixture()
def batch_server(tmp_path):
    config = ServiceConfig(
        port=0,
        workers=2,
        cache_backend="json",
        cache_path=str(tmp_path / "cache"),
        batch_dir=str(tmp_path / "batches"),
        sketches=8,
    )
    live = start_server(config)
    yield live
    live.close()


@pytest.fixture()
def batch_client(batch_server):
    host, port = batch_server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


def _batch_problems(count=3, tag="digits"):
    return [
        Problem(
            f"{n} {tag}",
            positive=["1" * n, "2" * n],
            negative=["a", "1" * (n + 4)],
            budget=10.0,
        ).to_dict()
        for n in range(2, 2 + count)
    ]


class TestBatchHttp:
    def test_submit_wait_and_paginate(self, batch_client):
        receipt = batch_client.submit_batch(_batch_problems(3))
        assert receipt["ingested"] == 3 and receipt["skipped"] == 0
        assert receipt["statuses"] == ["queued"] * 3
        summary = batch_client.wait_batch(receipt["batch_id"], timeout=60)
        assert summary["done"]
        assert summary["counts"]["failed"] == 0
        assert summary["counts"]["solved"] + summary["counts"]["unsolved"] == 3
        page = batch_client.batch_status(receipt["batch_id"], offset=1, limit=1)
        assert [item["index"] for item in page["items"]] == [1]
        assert page["items"][0]["cache_key"]

    def test_resume_skips_known_items(self, batch_client):
        problems = _batch_problems(3, tag="resumed digits")
        receipt = batch_client.submit_batch(problems[:2])
        batch_id = receipt["batch_id"]
        batch_client.wait_batch(batch_id, timeout=60)
        # Re-POST the full stream from the top: 2 known, 1 new.
        second = batch_client.submit_batch(problems, batch_id=batch_id)
        assert second["skipped"] == 2 and second["ingested"] == 1
        summary = batch_client.wait_batch(batch_id, timeout=60)
        assert summary["total"] == 3 and summary["counts"]["failed"] == 0

    def test_reingestion_hits_the_cache(self, batch_client):
        problems = _batch_problems(2, tag="cache digits")
        first = batch_client.submit_batch(problems)
        done = batch_client.wait_batch(first["batch_id"], timeout=60)
        solved = done["counts"]["solved"]
        second = batch_client.submit_batch(problems)
        summary = batch_client.wait_batch(second["batch_id"], timeout=60)
        assert summary["counts"]["cached"] >= min(1, solved)
        assert summary["counts"]["failed"] == 0

    def test_malformed_line_fails_only_that_item(self, batch_client):
        lines = [
            json.dumps(_batch_problems(1)[0]),
            "{not json",
            '{"positive": "not a list"}',
        ]
        receipt = batch_client.submit_batch(lines)
        assert receipt["statuses"][1] == "failed"
        assert receipt["statuses"][2] == "failed"
        summary = batch_client.wait_batch(receipt["batch_id"], timeout=60)
        assert summary["counts"]["failed"] == 2
        page = batch_client.batch_status(receipt["batch_id"])
        assert "error" in page["items"][1]

    def test_statically_unsatisfiable_item_fails_fast(self, batch_client):
        contradictory = Problem(
            "conflict", positive=["abc"], negative=["abc"], budget=5.0
        ).to_dict()
        receipt = batch_client.submit_batch([contradictory])
        assert receipt["statuses"] == ["failed"]
        page = batch_client.batch_status(receipt["batch_id"])
        assert "error" in page["items"][0]

    def test_offset_gap_is_conflict(self, batch_client):
        receipt = batch_client.submit_batch(_batch_problems(1))
        with pytest.raises(ServiceError) as info:
            batch_client.submit_batch(
                _batch_problems(1), batch_id=receipt["batch_id"], offset=5
            )
        assert info.value.status == 409
        assert info.value.code == "bad_offset"

    def test_offset_requires_batch_id(self, batch_client):
        with pytest.raises(ServiceError) as info:
            batch_client.submit_batch(_batch_problems(1), offset=1)
        assert info.value.status == 400

    def test_unknown_batch_404(self, batch_client):
        with pytest.raises(ServiceError) as info:
            batch_client.batch_status("e" * 32)
        assert info.value.status == 404
        assert info.value.code == "not_found"
        with pytest.raises(ServiceError) as info:
            batch_client.submit_batch(_batch_problems(1), batch_id="e" * 32)
        assert info.value.status == 404

    def test_bad_query_params_400(self, batch_server):
        host, port = batch_server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/batch?offset=nope",
            data=b"{}\n",
            method="POST",
            headers={"Content-Type": "application/x-ndjson"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_stats_reports_batches(self, batch_client):
        batch_client.submit_batch(_batch_problems(1, tag="stats digits"))
        stats = batch_client.stats()
        assert stats["batches"]["tracked"] >= 1
        assert "backlog" in stats["batches"]


class TestBatchRestartResume:
    def test_stranded_queued_item_is_reingested(self, tmp_path):
        # Simulate the server dying mid-batch: build a record on disk with a
        # queued item and no live claim, then let a fresh state resume it.
        from repro.service.batch import BatchStore

        batch_dir = tmp_path / "batches"
        store = BatchStore(batch_dir)
        record = store.create()
        problems = _batch_problems(2, tag="restart digits")
        record.append_item("cached", cache_key="k0", regex="<num>")
        record.append_item("queued", cache_key="k1")
        record.save()

        config = ServiceConfig(
            port=0,
            workers=2,
            cache_backend="json",
            cache_path=str(tmp_path / "cache"),
            batch_dir=str(batch_dir),
        )
        state = ServiceState(config)
        try:
            body = ("\n".join(json.dumps(p) for p in problems) + "\n").encode()
            status, payload = state.handle_batch_submit(body, record.batch_id, 0)
            assert status == 202
            assert payload["skipped"] == 1  # the cached item
            assert payload["ingested"] == 1  # the stranded queued one
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                code, page = state.handle_batch_get(record.batch_id)
                assert code == 200
                if page["done"]:
                    break
                time.sleep(0.05)
            assert page["done"]
            assert page["counts"]["failed"] == 0
            assert page["items"][0]["status"] == "cached"
            assert page["items"][1]["status"] in ("solved", "unsolved")
        finally:
            state.close()


class TestShutdownOrdering:
    def test_feeder_stops_before_pool_closes_and_strands_are_resumable(
        self, tmp_path
    ):
        # SIGTERM contract: the batch feeder thread must be dead before the
        # pool starts closing (nothing may enter a stopping queue), and any
        # backlogged items must land stranded-``queued`` on disk, eligible
        # for re-ingestion by the next process.
        from repro.service.batch import BatchRecord

        config = ServiceConfig(
            port=0,
            workers=1,
            queue_size=1,
            cache_backend="null",
            cache_path=str(tmp_path / "cache"),
            batch_dir=str(tmp_path / "batches"),
        )
        state = ServiceState(config)
        release = threading.Event()
        state.pool.close()
        factory = _blocking_session_factory(release)
        state.pool = WorkerPool(lambda: factory(), workers=1, queue_size=1)

        feeder_alive_at_pool_close = []
        original_close = state.pool.close

        def recording_close(timeout=5.0):
            feeder = state._batch_feeder_thread
            feeder_alive_at_pool_close.append(
                feeder is not None and feeder.is_alive()
            )
            return original_close(timeout)

        state.pool.close = recording_close
        try:
            # More items than worker+queue capacity: some stay in the
            # feeder's backlog when shutdown begins.
            body = (
                "\n".join(json.dumps(p) for p in _batch_problems(4, tag="shutdown"))
                + "\n"
            ).encode()
            status, payload = state.handle_batch_submit(body)
            assert status == 202
            batch_id = payload["batch_id"]
        finally:
            state.close()
            release.set()

        assert feeder_alive_at_pool_close == [False]
        # Reloaded from disk (no live claims survive a restart), the
        # unfinished items are stranded-queued and re-ingestable.
        record = BatchRecord.load(tmp_path / "batches" / f"{batch_id}.json")
        stranded = [
            i for i in range(len(record)) if record.needs_reingest(i)
        ]
        assert stranded  # at least the backlogged items
        fresh = ServiceState(config)
        try:
            status, resumed = fresh.handle_batch_submit(body, batch_id, 0)
            assert status == 202
            assert resumed["ingested"] == len(stranded)
            assert resumed["skipped"] == len(record) - len(stranded)
        finally:
            fresh.close()

    def test_close_is_idempotent(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        state.close()
        state.close()  # SIGTERM handler + finally block may both call it


class TestWarmCompiledArtifacts:
    def test_second_request_reuses_compiled_automata(self, tmp_path):
        # The compiled-membership caches are process-global, keyed by
        # interned regexes: a warm worker answering the same problem again
        # must draw on cached automata (nonzero dfa_cache_hits) and compile
        # nothing new.  The result cache is disabled so the second request
        # genuinely re-runs the engine instead of replaying a stored report.
        problem = Problem(
            "digits dash digits",
            positive=["12-34", "99-01"],
            negative=["1234", "12-", "ab-cd"],
            budget=10.0,
            sketches=["Concat(Hole(<num>),Concat(<->,Hole(<num>)))"],
        )
        config = ServiceConfig(
            port=0, workers=1, cache_backend="null", cache_path=str(tmp_path)
        )
        state = ServiceState(config)
        try:
            body = problem.to_json().encode()
            status, first = state.handle_solve(body)
            assert status == 200 and first["solved"], first
            assert first["provenance"] == "engine"
            status, second = state.handle_solve(body)
            assert status == 200 and second["solved"], second
            assert second["provenance"] == "engine"
            warm = RunReport.from_dict(second)
            assert warm.total_dfa_cache_hits > 0
            assert warm.total_dfa_compiled == 0, (
                "warm request recompiled automata",
                second["sketches"],
            )
        finally:
            state.close()

    def test_matchset_evaluator_reports_no_dfa_activity(self, tmp_path):
        # The differential baselines must stay honest: a service configured
        # with the match-set evaluator never touches the compiled caches.
        config = ServiceConfig(
            port=0,
            workers=1,
            cache_backend="null",
            cache_path=str(tmp_path),
            evaluator="matchset",
        )
        state = ServiceState(config)
        try:
            status, report = state.handle_solve(FAST_PROBLEM.to_json().encode())
            assert status == 200 and report["solved"], report
            parsed = RunReport.from_dict(report)
            assert parsed.total_dfa_cache_hits == 0
            assert parsed.total_dfa_compiled == 0
        finally:
            state.close()

    def test_unknown_evaluator_is_rejected_at_startup(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_backend="null", cache_path=str(tmp_path), evaluator="nope"
        )
        with pytest.raises(ValueError, match="unknown evaluator"):
            ServiceState(config)


class TestCorpusIngestCliResume:
    def test_resume_reingests_stranded_queued_items(
        self, batch_server, tmp_path, capsys
    ):
        # Client finished uploading, server died before solving: the client
        # state file says "everything sent", but the reloaded record has a
        # queued item with no job behind it.  `corpus ingest` must notice
        # and re-POST the stream so the stranded item actually solves.
        from repro.cli import main

        host, port = batch_server.server_address[:2]
        base = f"http://{host}:{port}"
        problems = _batch_problems(2, tag="cli restart digits")

        record = batch_server.state.batches.create()
        record.append_item("cached", cache_key="k0", regex="<num>")
        record.append_item("queued", cache_key="k1")  # stranded: not live
        record.save()

        source = tmp_path / "problems.ndjson"
        source.write_text("\n".join(json.dumps(p) for p in problems) + "\n")
        state_path = tmp_path / "ingest-state.json"
        state_path.write_text(
            json.dumps(
                {"batch_id": record.batch_id, "offset": 2, "server": base}
            )
        )

        code = main(
            [
                "corpus",
                "ingest",
                str(source),
                "--server",
                base,
                "--state",
                str(state_path),
                "--wait-timeout",
                "60",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "1 stranded item(s)" in captured.err
        assert record.status_of(0) == "cached"  # terminal item untouched
        assert record.status_of(1) in ("solved", "unsolved")
