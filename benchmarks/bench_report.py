"""Benchmark driver for the PBE engine's hot path.

The one engine benchmark driver (it subsumes the former
``bench_engine_micro.py`` pytest-benchmark file, now removed): the
approximation check, symbolic-constant inference (plus a heavier variant with
three symbolic integers that exercises the solver's propagation and
incremental re-solving), the full Section-2 motivating-example sketch
completion, a ``service_roundtrip`` workload that solves one problem over
the live HTTP service cold and then from the persistent result cache, and a
``corpus_throughput`` workload that bulk-ingests problems generated from the
committed sample corpus through ``POST /v1/batch`` cold and warm, and a
``fault_overhead`` workload that pins the cost of the dormant fault-injection
points left in the service hot paths (see ``repro.faults``), and a
``dfa_warm_reuse`` workload that asserts warm engine runs reuse the
process-global compiled automata instead of recompiling, all
without requiring pytest-benchmark.  The numbers are written to a JSON report
(``BENCH_engine.json`` at the repository root by default).

The report accumulates labelled *snapshots* so a before/after trajectory can
be committed alongside the code that produced it::

    python benchmarks/bench_report.py --label before --out BENCH_engine.json
    ... change the engine ...
    python benchmarks/bench_report.py --label after --out BENCH_engine.json \
        --baseline BENCH_engine.json

When the report contains both a ``before`` and an ``after`` snapshot, a
``comparison`` section with per-workload speedups is recomputed on every run.
When the evaluation layer supports selecting the evaluator
(``Examples(..., evaluator=...)``), the full-sketch workload is additionally
measured under every evaluator named by ``--modes`` so the legacy recursive
matcher stays measurable as a reference point.
"""

from __future__ import annotations

import argparse
import inspect
import json
import statistics
import sys
import time
from pathlib import Path

from repro.dsl import Concat, LET, NUM, Optional, RepeatRange, literal
from repro.sketch import parse_sketch
from repro.synthesis import (
    Examples,
    PLeaf,
    POp,
    SymInt,
    SynthesisConfig,
    Synthesizer,
    infeasible,
    infer_constants,
    initial_partial,
)

_POSITIVES = ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"]
_NEGATIVES = ["1234567891234567", "123.1234", "1.12345", ".1234"]
_CONFIG = SynthesisConfig(hole_depth=2, timeout=15.0)

_APPROX_SKETCH = "Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))"
_FULL_SKETCH = (
    "Concat(Hole(RepeatRange(<num>,1,15)),"
    "Hole(Optional(Concat(<.>,RepeatRange(<num>,1,3)))))"
)


def _examples(evaluator: str | None) -> Examples:
    """Build the example set, selecting the evaluator when supported."""
    if evaluator and "evaluator" in inspect.signature(Examples.__init__).parameters:
        return Examples(_POSITIVES, _NEGATIVES, evaluator=evaluator)
    return Examples(_POSITIVES, _NEGATIVES)


def _symbolic_partial() -> POp:
    return POp(
        "Concat",
        (
            POp("RepeatRange", (PLeaf(NUM),), (1, SymInt("k1"))),
            PLeaf(Optional(Concat(literal("."), RepeatRange(NUM, 1, 3)))),
        ),
    )


#: Heavy constant-inference workload: three symbolic integers in one regex, so
#: the Figure-14 enumeration interleaves blocking clauses over several κ and
#: the solver's decomposition/propagation do real work.
_HEAVY_POSITIVES = ["12-ab12", "12-abc1", "12-a123"]
_HEAVY_NEGATIVES = ["1-ab12", "12-123", "12-abcd"]
_HEAVY_CONFIG = SynthesisConfig(
    hole_depth=2, timeout=30.0, max_kappa=8, max_models_per_symbolic=8
)


def _heavy_symbolic_partial() -> POp:
    return POp(
        "Concat",
        (
            POp("Repeat", (PLeaf(NUM),), (SymInt("k1"),)),
            POp(
                "Concat",
                (
                    PLeaf(literal("-")),
                    POp(
                        "Concat",
                        (
                            POp("RepeatRange", (PLeaf(LET),), (1, SymInt("k2"))),
                            POp("RepeatAtLeast", (PLeaf(NUM),), (SymInt("k3"),)),
                        ),
                    ),
                ),
            ),
        ),
    )


def _time_workload(fn, repeats: int) -> dict:
    """Run ``fn`` (which returns per-iteration extras) ``repeats`` times."""
    times = []
    extras: dict = {}
    for _ in range(repeats):
        start = time.perf_counter()
        extras = fn() or {}
        times.append(time.perf_counter() - start)
    return {
        "seconds_min": min(times),
        "seconds_mean": statistics.fmean(times),
        "repeats": repeats,
        **extras,
    }


def bench_approximation_check(repeats: int, inner: int = 200) -> dict:
    """Approximation-based pruning check on the Figure-9 initial partial."""
    examples = _examples(None)
    partial = initial_partial(parse_sketch(_APPROX_SKETCH))

    def run():
        for _ in range(inner):
            assert infeasible(partial, examples, _CONFIG) is False
        return {"checks_per_iteration": inner}

    entry = _time_workload(run, repeats)
    entry["seconds_per_check"] = entry["seconds_min"] / inner
    return entry


def bench_constant_inference(repeats: int) -> dict:
    """Length-constraint encoding + symbolic-integer enumeration (Figure 14)."""
    examples = _examples(None)
    partial = _symbolic_partial()

    def run():
        candidates = infer_constants(partial, examples, _CONFIG)
        assert candidates
        return {"candidates": len(candidates)}

    return _time_workload(run, repeats)


def bench_constant_inference_heavy(repeats: int) -> dict:
    """Figure-14 enumeration with three symbolic integers (κ1, κ2, κ3)."""
    examples = Examples(_HEAVY_POSITIVES, _HEAVY_NEGATIVES)
    partial = _heavy_symbolic_partial()

    def run():
        candidates = infer_constants(partial, examples, _HEAVY_CONFIG)
        assert candidates
        return {"candidates": len(candidates), "symbolic_integers": 3}

    return _time_workload(run, repeats)


def bench_full_sketch_completion(repeats: int, evaluator: str | None) -> dict:
    """Complete the Section-2 motivating-example sketch from scratch."""
    sketch = parse_sketch(_FULL_SKETCH)

    def run():
        result = Synthesizer(_CONFIG).synthesize(sketch, _examples(evaluator))
        assert result.solved
        return {
            "expansions": result.expansions,
            "pruned": result.pruned,
            "eval_cache_hits": getattr(result, "eval_cache_hits", 0),
            "eval_cache_misses": getattr(result, "eval_cache_misses", 0),
            "approx_cache_hits": getattr(result, "approx_cache_hits", 0),
            "solver_propagations": getattr(result, "solver_propagations", 0),
            "solver_conflicts": getattr(result, "solver_conflicts", 0),
            "encode_cache_hits": getattr(result, "encode_cache_hits", 0),
            "static_prune_hits": getattr(result, "static_prune_hits", 0),
            "static_prune_misses": getattr(result, "static_prune_misses", 0),
            "dfa_cache_hits": getattr(result, "dfa_cache_hits", 0),
            "dfa_compiled": getattr(result, "dfa_compiled", 0),
            "dfa_compile_ms": getattr(result, "dfa_compile_ms", 0.0),
        }

    entry = _time_workload(run, repeats)
    entry["expansions_per_sec"] = entry["expansions"] / entry["seconds_min"]
    return entry


def bench_dfa_warm_reuse(repeats: int) -> dict:
    """Compiled-artifact reuse across engine runs (the warm-service number).

    The DFA evaluator stores every compiled automaton and batched membership
    verdict in process-global caches keyed by interned regexes, so a second
    engine run over the same problem — or the same problem hitting another
    warm service worker thread — should compile *nothing*.  One priming run
    pays whatever compilation the process still owes, then ``repeats`` timed
    runs must report zero freshly compiled automata while drawing nonzero
    cache hits; the workload asserts both, so the committed report is also a
    regression check on cache effectiveness.
    """
    from repro.automata.membership import MEMBERSHIP_CACHE_STATS

    sketch = parse_sketch(_FULL_SKETCH)

    def solve():
        result = Synthesizer(_CONFIG).synthesize(sketch, _examples("dfa"))
        assert result.solved
        return result

    compiled_before = MEMBERSHIP_CACHE_STATS.compiled
    start = time.perf_counter()
    solve()
    first_seconds = time.perf_counter() - start
    compiled_priming = MEMBERSHIP_CACHE_STATS.compiled - compiled_before

    def run():
        result = solve()
        assert result.dfa_compiled == 0, "warm run compiled fresh automata"
        assert result.dfa_cache_hits > 0, "warm run drew no membership-cache hits"
        return {
            "dfa_cache_hits": result.dfa_cache_hits,
            "dfa_compiled_warm": result.dfa_compiled,
        }

    entry = _time_workload(run, repeats)
    entry["first_run_seconds"] = first_seconds
    entry["automata_compiled_priming"] = compiled_priming
    entry["warm_speedup_vs_first"] = first_seconds / entry["seconds_min"]
    return entry


def bench_static_prune(repeats: int) -> dict:
    """The Section-2 sketch with the static analyzer on versus off.

    Same search as ``full_sketch_completion``, run twice per iteration: once
    with ``use_static_analysis`` enabled (the default) and once disabled, so
    the report carries both the analyzer's hit rate and the net wall-clock
    effect of the cheap pre-filter in front of the automata-based
    approximation check.
    """
    sketch = parse_sketch(_FULL_SKETCH)
    examples = _examples(None)
    config_on = _CONFIG
    config_off = SynthesisConfig(hole_depth=2, timeout=15.0, use_static_analysis=False)

    def run():
        start = time.perf_counter()
        with_analysis = Synthesizer(config_on).synthesize(sketch, examples)
        on_seconds = time.perf_counter() - start
        start = time.perf_counter()
        without = Synthesizer(config_off).synthesize(sketch, examples)
        off_seconds = time.perf_counter() - start
        assert with_analysis.solved and without.solved
        hits = with_analysis.static_prune_hits
        misses = with_analysis.static_prune_misses
        return {
            "static_prune_hits": hits,
            "static_prune_misses": misses,
            "static_prune_rate": hits / max(hits + misses, 1),
            "seconds_with_analysis": on_seconds,
            "seconds_without_analysis": off_seconds,
        }

    return _time_workload(run, repeats)


#: Service-roundtrip problem: slow enough cold (~2 s of portfolio search for
#: three distinct regexes) that the cached second hit shows the full contrast.
_SERVICE_PROBLEM = {
    "description": "one or more letters followed by 3 digits",
    "positive": ["ab123", "x987"],
    "negative": ["123", "ab12", "ab1234"],
    "k": 3,
    "budget": 15.0,
}


def bench_service_roundtrip(repeats: int) -> dict:
    """HTTP solve → cache write-through → cached re-solve, over a live server.

    Starts the `repro.service` HTTP server on an ephemeral port with a fresh
    cache, issues one cold ``POST /v1/solve`` (full portfolio search), then
    ``repeats`` identical requests served from the persistent result cache.
    ``seconds_min`` is the cached-hit latency (the number to track);
    ``cache_speedup`` is cold / cached.
    """
    import tempfile

    from repro.api import Problem
    from repro.service import ServiceClient, ServiceConfig, start_server

    problem = Problem.from_dict(_SERVICE_PROBLEM)
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0, workers=1, cache_backend="json", cache_path=tmp
        )
        server = start_server(config)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            start = time.perf_counter()
            cold = client.solve(problem)
            cold_seconds = time.perf_counter() - start
            assert cold.provenance == "engine", cold.provenance
            assert cold.solved
            cached_times = []
            for _ in range(max(repeats, 3)):
                start = time.perf_counter()
                hit = client.solve(problem)
                cached_times.append(time.perf_counter() - start)
                assert hit.provenance == "cache", hit.provenance
            cache_stats = client.stats()["cache"]
        finally:
            server.close()
    cached_min = min(cached_times)
    return {
        "seconds_min": cached_min,
        "seconds_mean": statistics.fmean(cached_times),
        "repeats": len(cached_times),
        "cold_seconds": cold_seconds,
        "cache_speedup": cold_seconds / cached_min,
        "cache_hits": cache_stats["hits"],
        "cache_misses": cache_stats["misses"],
        "solutions": len(cold.solutions),
    }


#: Sample-corpus patterns the engine cannot solve within the bench budget.
#: An always-unsolved item would re-run its full budget on the warm pass and
#: turn the throughput numbers into a measurement of the budget, so the
#: workload excludes them (and reports how many it excluded).
_CORPUS_UNSOLVED = {"^(left|right|center)$"}


def bench_corpus_throughput(repeats: int, entries: int = 14) -> dict:
    """Corpus bulk ingestion: generate → ``POST /v1/batch`` cold, then warm.

    Loads the first ``entries`` translatable patterns from the committed
    sample corpus, generates Problems from them (seeded, so the batch is
    identical run to run), ingests them through a live server with a fresh
    cache, then re-ingests the same problems as a second batch.  The warm
    pass should be dominated by cache hits; ``problems_per_sec_warm`` versus
    ``problems_per_sec_cold`` is the number to track.  ``repeats`` is
    ignored beyond the warm pass — a cold solve of the whole batch per
    repeat would swamp the suite.
    """
    import tempfile

    from repro.corpus import GeneratorConfig, generate_problems, load_corpus
    from repro.service import ServiceClient, ServiceConfig, start_server

    corpus = Path(__file__).parent.parent / "tests/fixtures/corpus/sample_corpus.ndjson"
    loaded = load_corpus(corpus, limit=entries)
    generated = generate_problems(
        loaded.entries, GeneratorConfig(seed=0, budget=15.0)
    )
    problems = [
        problem.to_dict()
        for problem in generated.problems
        if problem.description not in _CORPUS_UNSOLVED
    ]
    assert problems, "sample corpus produced no problems"

    def ingest(client: ServiceClient) -> tuple[float, dict]:
        start = time.perf_counter()
        receipt = client.submit_batch(problems)
        summary = client.wait_batch(receipt["batch_id"], timeout=300)
        return time.perf_counter() - start, summary

    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            port=0, workers=2, cache_backend="json", cache_path=tmp
        )
        server = start_server(config)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            cold_seconds, cold_summary = ingest(client)
            warm_seconds, warm_summary = ingest(client)
        finally:
            server.close()
    assert cold_summary["counts"]["failed"] == 0, cold_summary
    assert warm_summary["counts"]["cached"] >= 1, warm_summary
    count = len(problems)
    return {
        "seconds_min": warm_seconds,
        "seconds_mean": warm_seconds,
        "repeats": 1,
        "problems": count,
        "corpus_entries": len(loaded.entries),
        "generator_skips": sum(generated.skipped.values()),
        "excluded_unsolved": len(generated.problems) - count,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "problems_per_sec_cold": count / cold_seconds,
        "problems_per_sec_warm": count / warm_seconds,
        "cold_counts": cold_summary["counts"],
        "warm_counts": warm_summary["counts"],
    }


def bench_fault_overhead(repeats: int, inner: int = 100_000) -> dict:
    """Cost of the disabled fault points left compiled into the hot paths.

    The ``repro.faults`` points (``cache.read``, ``batch.persist``, ...) sit
    permanently in the service code; when no ``REPRO_FAULTS`` plan is armed
    they must be a single global load + ``None`` check.  This workload pins
    that down from both ends: ``seconds_per_call`` times the disabled
    ``fault_point`` in a tight loop, ``calls_per_cached_request`` counts how
    many points an in-process cached ``/v1/solve`` hit actually traverses
    (measured with an armed-but-silent ``seed=0`` plan, which counts calls
    without ever firing), and ``overhead_fraction`` is their product over the
    cached-hit latency — the share of the service's fastest request spent on
    dormant instrumentation.  CI asserts it stays under 1%.
    """
    import tempfile

    from repro.faults import configure, fault_point
    from repro.service import ServiceConfig, ServiceState

    configure(None)

    def run():
        for _ in range(inner):
            fault_point("cache.read")
        return {"calls_per_iteration": inner}

    entry = _time_workload(run, repeats)
    per_call = entry["seconds_min"] / inner

    body = json.dumps(_SERVICE_PROBLEM).encode()
    with tempfile.TemporaryDirectory() as tmp:
        state = ServiceState(
            ServiceConfig(workers=1, cache_backend="json", cache_path=tmp)
        )
        try:
            status, cold = state.handle_solve(body)
            assert status == 200 and cold["provenance"] == "engine", (status, cold)
            cached_times = []
            for _ in range(max(repeats, 3)):
                start = time.perf_counter()
                status, hit = state.handle_solve(body)
                cached_times.append(time.perf_counter() - start)
                assert status == 200 and hit["provenance"] == "cache", (status, hit)
            plan = configure("seed=0")  # armed but silent: counts traversals
            status, hit = state.handle_solve(body)
            assert status == 200 and hit["provenance"] == "cache", (status, hit)
            calls = sum(
                point["calls"] for point in plan.stats()["points"].values()
            )
            assert plan.total_fired() == 0
        finally:
            configure(None)
            state.close()
    cached_seconds = min(cached_times)
    entry.update(
        {
            "seconds_per_call": per_call,
            "calls_per_cached_request": calls,
            "cached_request_seconds": cached_seconds,
            "overhead_fraction": (calls * per_call) / cached_seconds,
        }
    )
    return entry


def run_snapshot(label: str, repeats: int, modes: list[str]) -> dict:
    workloads = {
        "approximation_check": bench_approximation_check(repeats),
        "constant_inference": bench_constant_inference(repeats),
        "constant_inference_heavy": bench_constant_inference_heavy(repeats),
        "full_sketch_completion": bench_full_sketch_completion(repeats, None),
        "static_prune": bench_static_prune(repeats),
        "service_roundtrip": bench_service_roundtrip(repeats),
        "corpus_throughput": bench_corpus_throughput(repeats),
        "fault_overhead": bench_fault_overhead(repeats),
    }
    supports_modes = "evaluator" in inspect.signature(Examples.__init__).parameters
    if supports_modes:
        for mode in modes:
            workloads[f"full_sketch_completion[{mode}]"] = bench_full_sketch_completion(
                repeats, mode
            )
        workloads["dfa_warm_reuse"] = bench_dfa_warm_reuse(repeats)
    return {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "workloads": workloads,
    }


def compare(snapshots: list[dict]) -> dict:
    """Per-workload before/after speedups, when both snapshots are present."""
    by_label = {snapshot["label"]: snapshot for snapshot in snapshots}
    if "before" not in by_label or "after" not in by_label:
        return {}
    comparison = {}
    before = by_label["before"]["workloads"]
    after = by_label["after"]["workloads"]
    for name in sorted(set(before) & set(after)):
        old, new = before[name]["seconds_min"], after[name]["seconds_min"]
        if new > 0:
            comparison[name] = {
                "before_seconds": old,
                "after_seconds": new,
                "speedup": old / new,
            }
    return comparison


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json", type=Path)
    parser.add_argument("--label", default="after")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="existing report whose snapshots (other labels) are kept",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--modes",
        default="dfa,matchset,recursive",
        help="comma-separated evaluator modes for the full-sketch workload",
    )
    args = parser.parse_args(argv)

    snapshots: list[dict] = []
    if args.baseline and args.baseline.exists():
        snapshots = [
            snapshot
            for snapshot in json.loads(args.baseline.read_text()).get("snapshots", [])
            if snapshot["label"] != args.label
        ]

    modes = [mode for mode in args.modes.split(",") if mode]
    snapshot = run_snapshot(args.label, args.repeats, modes)
    snapshots.append(snapshot)

    report = {
        "schema": 1,
        "source": "benchmarks/bench_report.py",
        "snapshots": snapshots,
        "comparison": compare(snapshots),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for name, entry in snapshot["workloads"].items():
        print(f"{name:40s} {entry['seconds_min']*1000:10.2f} ms/iter")
    for name, entry in report["comparison"].items():
        print(f"{name:40s} speedup {entry['speedup']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
