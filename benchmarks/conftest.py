"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation at a
reduced scale (few benchmarks, short time budgets) so the whole suite runs in
minutes.  Set ``REPRO_BENCH_SCALE=full`` to run paper-scale workloads (hours).
"""

import os

import pytest


FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"


@pytest.fixture(scope="session")
def scale():
    """Workload sizes used by the benchmark files."""
    if FULL_SCALE:
        return {
            "deepregex_count": 200,
            "stackoverflow_count": 62,
            "time_budget_deepregex": 10.0,
            "time_budget_stackoverflow": 60.0,
            "iterations": 4,
            "sketches": 25,
            "ablation_benchmarks": 62,
            "ablation_sketch_timeout": 5.0,
            "participants": 20,
        }
    return {
        "deepregex_count": 10,
        "stackoverflow_count": 8,
        "time_budget_deepregex": 2.0,
        "time_budget_stackoverflow": 3.0,
        "iterations": 1,
        "sketches": 8,
        "ablation_benchmarks": 3,
        "ablation_sketch_timeout": 0.5,
        "participants": 8,
    }
