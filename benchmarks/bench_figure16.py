"""Benchmark regenerating Figure 16 (and the Section 8.1 headline accuracies).

Prints, for each dataset, the number of benchmarks solved by Regel, Regel-PBE
and DeepRegex at each iteration of the interactive protocol.  Expected shape
(paper values at full scale): Regel ≫ DeepRegex ≫/≈ Regel-PBE on the DeepRegex
dataset (151→185 / 134 / ≤66 of 200) and Regel ≫ Regel-PBE > DeepRegex on the
StackOverflow dataset (44 / 11 / 3 of 62).
"""

from repro.datasets import generate_deepregex_dataset, stackoverflow_dataset
from repro.experiments import figure16
from repro.synthesis import SynthesisConfig


def _run_figure16(dataset_name, benchmarks, scale, time_budget):
    result = figure16(
        dataset=dataset_name,
        benchmarks=benchmarks,
        time_budget=time_budget,
        max_iterations=scale["iterations"],
        num_sketches=scale["sketches"],
        config=SynthesisConfig(timeout=time_budget, hole_depth=2),
        train_parser=False,
    )
    print()
    print(result.table(max_iterations=scale["iterations"]))
    return result


def test_figure16_deepregex(benchmark, scale):
    data = generate_deepregex_dataset(count=scale["deepregex_count"])
    result = benchmark.pedantic(
        _run_figure16,
        args=("deepregex", data, scale, scale["time_budget_deepregex"]),
        iterations=1,
        rounds=1,
    )
    final = {tool: counts[-1] for tool, counts in result.series.items()}
    assert final["regel"] >= final["regel-pbe"]


def test_figure16_stackoverflow(benchmark, scale):
    data = stackoverflow_dataset()[: scale["stackoverflow_count"]]
    result = benchmark.pedantic(
        _run_figure16,
        args=("stackoverflow", data, scale, scale["time_budget_stackoverflow"]),
        iterations=1,
        rounds=1,
    )
    final = {tool: counts[-1] for tool, counts in result.series.items()}
    assert final["regel"] >= final["deepregex"]
