"""Benchmark regenerating Figure 17: average synthesis time per solved benchmark.

Expected shape: Regel's average time per solved benchmark is lower than
Regel-PBE's on both datasets (the natural-language hints speed up the search).
"""

from repro.datasets import generate_deepregex_dataset, stackoverflow_dataset
from repro.experiments import figure16, figure17
from repro.experiments.runner import ToolName
from repro.synthesis import SynthesisConfig


def _run(dataset_name, benchmarks, scale, time_budget):
    fig16 = figure16(
        dataset=dataset_name,
        benchmarks=benchmarks,
        time_budget=time_budget,
        max_iterations=scale["iterations"],
        num_sketches=scale["sketches"],
        config=SynthesisConfig(timeout=time_budget, hole_depth=2),
        train_parser=False,
        tools=(ToolName.REGEL, ToolName.REGEL_PBE),
    )
    result = figure17(from_figure16=fig16, max_iterations=scale["iterations"])
    print()
    print(result.table(max_iterations=scale["iterations"]))
    return result


def test_figure17_deepregex(benchmark, scale):
    data = generate_deepregex_dataset(count=scale["deepregex_count"])
    result = benchmark.pedantic(
        _run, args=("deepregex", data, scale, scale["time_budget_deepregex"]),
        iterations=1, rounds=1,
    )
    assert "regel" in result.series


def test_figure17_stackoverflow(benchmark, scale):
    data = stackoverflow_dataset()[: scale["stackoverflow_count"]]
    result = benchmark.pedantic(
        _run, args=("stackoverflow", data, scale, scale["time_budget_stackoverflow"]),
        iterations=1, rounds=1,
    )
    assert "regel-pbe" in result.series
