"""Benchmark regenerating the dataset statistics of Section 7 / footnote 10.

Expected shape: StackOverflow descriptions are longer than DeepRegex ones
(paper: 26 vs 12 words) and their target regexes are larger (11 vs 5 nodes);
benchmarks average around 4 positive and 5 negative examples.
"""

from repro.experiments import dataset_statistics
from repro.experiments.ablation import statistics_table


def _run(scale):
    stats = dataset_statistics(deepregex_count=scale["deepregex_count"])
    print()
    print(statistics_table(stats))
    return stats


def test_dataset_statistics(benchmark, scale):
    stats = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    assert stats["stackoverflow"].avg_words > stats["deepregex"].avg_words
    assert stats["stackoverflow"].avg_regex_size > stats["deepregex"].avg_regex_size
