"""Micro-benchmarks of the PBE engine's components (not a paper figure).

These quantify the cost of the pieces the ablation study reasons about: the
approximation check, the constraint encoding + solving step, and a full
sketch completion of the Section 2 motivating example.
"""

from repro.sketch import parse_sketch
from repro.synthesis import (
    Examples,
    PLeaf,
    POp,
    SymInt,
    SynthesisConfig,
    Synthesizer,
    constraint_for_examples,
    infeasible,
    infer_constants,
    initial_partial,
)
from repro.dsl import NUM, RepeatRange, literal, Concat, Optional


_POSITIVES = ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"]
_NEGATIVES = ["1234567891234567", "123.1234", "1.12345", ".1234"]
_EXAMPLES = Examples(_POSITIVES, _NEGATIVES)
_CONFIG = SynthesisConfig(hole_depth=2, timeout=15.0)

_SYMBOLIC = POp(
    "Concat",
    (
        POp("RepeatRange", (PLeaf(NUM),), (1, SymInt("k1"))),
        PLeaf(Optional(Concat(literal("."), RepeatRange(NUM, 1, 3)))),
    ),
)


def test_approximation_check(benchmark):
    partial = initial_partial(
        parse_sketch("Concat(Hole(<num>,<,>),Hole(RepeatRange(<num>,1,3),<,>))")
    )
    result = benchmark(infeasible, partial, _EXAMPLES, _CONFIG)
    assert result is False


def test_constraint_encoding_and_solving(benchmark):
    def encode_and_infer():
        return infer_constants(_SYMBOLIC, _EXAMPLES, _CONFIG)

    candidates = benchmark(encode_and_infer)
    assert candidates


def test_motivating_example_synthesis(benchmark):
    sketch = parse_sketch(
        "Concat(Hole(RepeatRange(<num>,1,15)),Hole(Optional(Concat(<.>,RepeatRange(<num>,1,3)))))"
    )

    def run():
        return Synthesizer(_CONFIG).synthesize(sketch, _EXAMPLES)

    result = benchmark(run)
    assert result.solved
