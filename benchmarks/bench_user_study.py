"""Benchmark regenerating the Section 8.3 user study (simulated participants).

Expected shape: the with-Regel success rate is well above the without-Regel
rate (paper: 73.3% vs 28.3%) and the one-tailed paired t-test is significant.
"""

from repro.datasets import stackoverflow_dataset
from repro.experiments import user_study
from repro.synthesis import SynthesisConfig


def _run(scale):
    result = user_study(
        participants=scale["participants"],
        tasks_per_participant=6,
        benchmarks=stackoverflow_dataset()[: scale["stackoverflow_count"]],
        time_budget=scale["time_budget_stackoverflow"],
        config=SynthesisConfig(timeout=scale["time_budget_stackoverflow"], hole_depth=2),
    )
    print()
    print(result.table())
    return result


def test_user_study(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    assert result.with_tool_rate >= result.without_tool_rate
