"""Benchmark regenerating Figure 18: the PBE-engine ablation.

For each engine variant (Regel-Enum, Regel-Approx, full Regel) the harness
completes the semantic parser's top sketches for StackOverflow benchmarks and
reports solved-sketch counts and cumulative time.  Expected shape: the full
engine solves at least as many sketches as Regel-Approx, which solves at
least as many as Regel-Enum, in (much) less cumulative time at paper scale.
"""

from repro.datasets import stackoverflow_dataset
from repro.experiments import figure18


def _run(scale):
    result = figure18(
        benchmarks=stackoverflow_dataset()[: scale["ablation_benchmarks"]],
        sketches_per_benchmark=scale["sketches"],
        per_sketch_timeout=scale["ablation_sketch_timeout"],
    )
    print()
    print(result.table())
    return result


def test_figure18_ablation(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    counts = result.solved_counts()
    assert counts["regel"] >= counts["regel-enum"]
    assert counts["regel-approx"] >= counts["regel-enum"]
