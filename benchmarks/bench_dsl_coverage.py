"""Benchmark regenerating footnote 9: FlashFill / Fidex DSL coverage.

Expected shape: only a small fraction of the StackOverflow corpus is
expressible in the FlashFill fragment (paper: 3 of 62) and slightly more in
the Fidex fragment (paper: 7 of 62).
"""

from repro.experiments import dsl_coverage


def _run():
    result = dsl_coverage()
    print()
    print(result.table())
    return result


def test_dsl_coverage(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=1)
    assert result.flashfill < result.total / 4
    assert result.fidex < result.total / 2
