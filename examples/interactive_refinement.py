"""Interactive refinement: adding examples until the intended regex appears.

This mirrors the evaluation protocol of Section 8.1: the tool is run on the
initial examples; if the intended regex is not among the results, two
distinguishing examples are added and the tool is re-run (up to 4 iterations).

Run with:  python examples/interactive_refinement.py
"""

from repro.datasets import stackoverflow_dataset
from repro.dsl import to_dsl_string
from repro.multimodal import Regel, run_interactive
from repro.synthesis import SynthesisConfig


def main() -> None:
    benchmark = stackoverflow_dataset()[1]  # the "2 letters + 6 digits or 8 digits" post
    print("Task description:")
    print(f"  {benchmark.description}")
    print(f"Ground-truth regex: {benchmark.regex_text}\n")

    tool = Regel(config=SynthesisConfig(timeout=10.0, hole_depth=3), num_sketches=15)

    def solve(positive, negative):
        print(f"  running Regel with {len(positive)} positive / {len(negative)} negative examples")
        result = tool.synthesize(
            benchmark.description, positive, negative, k=5, time_budget=10.0
        )
        for regex in result.regexes:
            print(f"    candidate: {to_dsl_string(regex)}")
        return result.regexes, result.elapsed

    session = run_interactive(benchmark, solve, max_iterations=3)

    print()
    if session.solved_at is not None:
        print(f"Intended regex found at iteration {session.solved_at}.")
    else:
        print("Intended regex not found within 3 iterations.")
    for outcome in session.outcomes:
        print(
            f"  iteration {outcome.iteration}: solved={outcome.solved} "
            f"time={outcome.elapsed:.2f}s examples={outcome.num_positive}+{outcome.num_negative}"
        )


if __name__ == "__main__":
    main()
