"""Quickstart: synthesize a regex from an English description plus examples.

Uses the pipeline API: a frozen :class:`~repro.api.Problem` spec, a
:class:`~repro.api.Session` with an interleaved portfolio scheduler (the
paper's run-one-engine-per-sketch-in-parallel semantics, in-process), and the
streaming ``iter_solutions`` generator that yields each regex the moment an
engine instance finds it — long before the full budget elapses.

Run with:  python examples/quickstart.py
"""

import time

from repro.api import InterleavedScheduler, Problem, Session
from repro.dsl import matches


def main() -> None:
    # The user describes the task in English *and* gives a few examples.
    problem = Problem(
        description="2 letters followed by a dash and then 4 digits",
        positive=["ab-1234", "xy-0001"],
        negative=["ab1234", "a-1234", "ab-123"],
        k=1,
        budget=15.0,
    )

    session = Session(scheduler=InterleavedScheduler())

    print(f"Streaming solutions (budget {problem.budget:.0f}s):")
    start = time.monotonic()
    for rank, solution in enumerate(session.iter_solutions(problem), start=1):
        print(f"#{rank} at {time.monotonic() - start:5.2f}s: {solution.regex}")
        print(f"     python regex: {solution.python_regex()}")

    report = session.last_report
    if not report.solved:
        print("No regex found within the time budget.")
        return

    print(
        f"\nTried {report.sketches_tried} sketches in {report.elapsed:.2f}s "
        f"({report.total_expansions} expansions, {report.total_pruned} pruned)"
    )

    best = report.best.ast()
    print("\nSanity check against fresh strings:")
    for text in ["QQ-9999", "QQ-99", "qq-9999"]:
        print(f"  {text!r:12} -> {'match' if matches(best, text) else 'no match'}")

    # Problems and reports round-trip through JSON — ready for batch files,
    # queues, and services:
    print(f"\nProblem as JSON: {problem.to_json()}")


if __name__ == "__main__":
    main()
