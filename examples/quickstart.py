"""Quickstart: synthesize a regex from an English description plus examples.

Run with:  python examples/quickstart.py
"""

from repro import Regel, SynthesisConfig
from repro.dsl import matches, to_dsl_string, to_python_regex


def main() -> None:
    # The user describes the task in English *and* gives a few examples.
    description = "2 capital letters followed by a dash and then 4 digits"
    positive = ["AB-1234", "XY-0001"]
    negative = ["AB1234", "A-1234", "ab-1234", "AB-123"]

    tool = Regel(config=SynthesisConfig(timeout=15.0))
    result = tool.synthesize(description, positive, negative, k=3, time_budget=15.0)

    if not result.solved:
        print("No regex found within the time budget.")
        return

    print(f"Tried {result.sketches_tried} sketches in {result.elapsed:.2f}s\n")
    for rank, regex in enumerate(result.regexes, start=1):
        print(f"#{rank}: {to_dsl_string(regex)}")
        print(f"     python regex: {to_python_regex(regex)}")

    best = result.regexes[0]
    print("\nSanity check against fresh strings:")
    for text in ["QQ-9999", "QQ-99", "qq-9999"]:
        print(f"  {text!r:12} -> {'match' if matches(best, text) else 'no match'}")


if __name__ == "__main__":
    main()
