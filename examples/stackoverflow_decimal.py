"""The paper's motivating example (Section 2): validating Decimal(18, 3).

A StackOverflow user wants to accept decimal numbers with at most 15 digits
before the period and at most 3 after it, and also plain 15-digit integers.
The English description is ambiguous (it even says "comma" instead of
"period"), but combined with examples Regel recovers the intended regex.

Run with:  python examples/stackoverflow_decimal.py
"""

from repro import Regel, SynthesisConfig
from repro.dsl import matches, to_dsl_string


DESCRIPTION = (
    "I need a regular expression that validates Decimal(18, 3), which means the max "
    "number of digits before comma is 15 then accept at max 3 numbers after the comma."
)
POSITIVE = ["123456789.123", "123456789123456.12", "12345.1", "123456789123456"]
NEGATIVE = ["1234567891234567", "123.1234", "1.12345", ".1234"]


def main() -> None:
    tool = Regel(config=SynthesisConfig(timeout=30.0, hole_depth=3), num_sketches=25)

    print("Natural language description:")
    print(f"  {DESCRIPTION}\n")
    print("Ranked h-sketches produced by the semantic parser (top 5):")
    for sketch in tool.parser.sketches(DESCRIPTION, k=5):
        from repro.sketch import sketch_to_string

        print(f"  {sketch_to_string(sketch)}")

    result = tool.synthesize(DESCRIPTION, POSITIVE, NEGATIVE, k=5, time_budget=30.0)
    print(f"\nSynthesis finished in {result.elapsed:.2f}s "
          f"({result.sketches_tried} sketches tried)\n")

    if not result.solved:
        print("No consistent regex found — try increasing the time budget.")
        return

    for rank, regex in enumerate(result.regexes, start=1):
        print(f"#{rank}: {to_dsl_string(regex)}")

    best = result.regexes[0]
    print("\nBehaviour of the top result:")
    for text in POSITIVE + NEGATIVE + ["0.5", "12345678.9999"]:
        print(f"  {text!r:22} -> {'accept' if matches(best, text) else 'reject'}")


if __name__ == "__main__":
    main()
