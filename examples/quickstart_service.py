"""End-to-end service quickstart: submit a job, stream partial solutions,
then demonstrate a cache hit on resubmission.

Starts a `regel serve` instance in-process on an ephemeral port (so the
script is self-contained — against a real deployment, point ServiceClient
at its URL instead), then:

1. submits an async job (``POST /v1/jobs``) and polls it, printing each
   partial solution the moment the server discovers it,
2. re-submits the *identical* problem and shows it answered from the
   persistent result cache (``provenance: "cache"``, microseconds),
3. prints the service's cache/pool counters (``GET /v1/stats``).

Run with:  PYTHONPATH=src python examples/quickstart_service.py
"""

import tempfile
import time

from repro.api import Problem
from repro.service import ServiceClient, ServiceConfig, start_server


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="regel-cache-")
    server = start_server(
        ServiceConfig(port=0, workers=2, cache_backend="json", cache_path=cache_dir)
    )
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    print(f"service up at http://{host}:{port} (cache: {cache_dir})\n")

    problem = Problem(
        description="one or more letters followed by 3 digits",
        positive=["ab123", "x987"],
        negative=["123", "ab12", "ab1234"],
        k=3,
        budget=15.0,
    )

    # -- 1. async job, streamed partial solutions ---------------------------
    print("submitting job (async), streaming solutions as they arrive:")
    start = time.perf_counter()
    for solution in client.iter_solutions(problem):
        print(
            f"  [{time.perf_counter() - start:6.2f}s] {solution.regex}"
            f"  (size {solution.size}, sketch #{solution.sketch_index})"
        )
    report = client.last_job["report"]
    print(
        f"job {client.last_job['job_id'][:8]}… done in "
        f"{time.perf_counter() - start:.2f}s "
        f"(provenance: {report['provenance']})\n"
    )

    # -- 2. identical resubmission: served from the persistent cache --------
    print("resubmitting the identical problem:")
    start = time.perf_counter()
    cached = client.solve(problem)
    elapsed = time.perf_counter() - start
    print(
        f"  answered in {elapsed * 1000:.1f} ms, provenance: {cached.provenance}, "
        f"{len(cached.solutions)} solutions (cache key {cached.cache_key[:12]}…)\n"
    )

    # -- 3. the counters behind /v1/stats -----------------------------------
    stats = client.stats()
    cache = stats["cache"]
    pool = stats["pool"]
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['entries']} entries, backend {cache['backend']})"
    )
    print(f"pool:  {pool['completed']} jobs completed on {pool['workers']} workers")

    server.close()


if __name__ == "__main__":
    main()
