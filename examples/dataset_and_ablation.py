"""Generating a DeepRegex-style dataset and running a small engine ablation.

This example shows the two "researcher-facing" workflows:

1. generating benchmarks (regex + stylised English + sampled examples) with
   the synchronous grammar of Section 7, and
2. comparing the three PBE-engine variants of Figure 18 on a few benchmarks.

Run with:  python examples/dataset_and_ablation.py
"""

from repro.datasets import generate_deepregex_dataset, stackoverflow_dataset
from repro.experiments import figure18
from repro.experiments.ablation import dataset_statistics, statistics_table


def main() -> None:
    print("A few generated DeepRegex-style benchmarks:\n")
    for benchmark in generate_deepregex_dataset(count=5, seed=42):
        print(f"  [{benchmark.benchmark_id}]")
        print(f"    description: {benchmark.description}")
        print(f"    regex:       {benchmark.regex_text}")
        print(f"    positive:    {list(benchmark.positive)}")
        print(f"    negative:    {list(benchmark.negative)}\n")

    print(statistics_table(dataset_statistics(deepregex_count=30)))
    print()

    print("Small-scale PBE-engine ablation (Figure 18 shape):")
    result = figure18(
        benchmarks=stackoverflow_dataset()[:3],
        sketches_per_benchmark=6,
        per_sketch_timeout=0.5,
    )
    print(result.table())


if __name__ == "__main__":
    main()
