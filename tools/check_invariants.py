#!/usr/bin/env python
"""Static invariant checks over ``src/`` (stdlib :mod:`ast` only; no deps).

Run from the repository root (CI does)::

    python tools/check_invariants.py

Three repository-wide invariants that no unit test can pin down, because each
is a property of *all* source files at once:

``frozen-mutation``
    ``object.__setattr__`` is the only way to mutate a frozen dataclass, so
    its use is confined to the modules that own the node lifecycles (interning
    and ``__post_init__`` canonicalisation).  Anywhere else it is someone
    mutating a shared, hash-consed node — a cross-thread data race.

``legacy-import``
    ``repro.solver.legacy`` is the pre-PR-4 reference solver, kept for
    differential tests only.  Production modules must import
    ``repro.solver`` (whose ``__init__`` alone may re-export it).

``unregistered-mutable``
    Worker threads share every module-level container.  Mutable module state
    is only safe when it is a guarded cache registered through
    :func:`repro.caches.register_cache` (mutations go through
    ``caches.CACHE_LOCK``; ``REPRO_SANITIZE=1`` enforces it at runtime).
    This check flags module-level bindings of *empty* mutable containers —
    a container born empty exists to be filled at runtime, i.e. it is a
    cache — that bypass the registry.  Literal tables built in full at
    import time (operator maps, lexicons, ``__all__``) are read-only by
    convention and are not flagged.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Modules whose node lifecycles legitimately need ``object.__setattr__``
#: (interning machinery, frozen-dataclass ``__post_init__`` setup, and the
#: on-node memo stamps — ``_hash``-style pure-value attributes whose single
#: atomic write makes a racing overwrite benign).
SETATTR_ALLOWED = {
    "repro/dsl/ast.py",
    "repro/dsl/intern.py",
    "repro/api/problem.py",
    "repro/sketch/ast.py",
    "repro/solver/terms.py",
    "repro/synthesis/partial.py",
    "repro/synthesis/approximate.py",
    "repro/analysis/analyzer.py",
}

#: Module-level empty containers exempt from the registry requirement.
#: Key is the path relative to ``src/``, values are the binding names.
MUTABLE_ALLOWED = {
    "repro/caches.py": {"_REGISTRY"},  # the registry itself, locked on write
}

#: The owning package may re-export the legacy solver for the tests.
LEGACY_IMPORT_ALLOWED = {"repro/solver/__init__.py"}

MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "WeakKeyDictionary",
    "WeakValueDictionary",
}

Finding = Tuple[str, int, str, str]  # path, line, code, message


def _is_register_cache_call(node: ast.expr) -> bool:
    """True for ``caches.register_cache(...)`` / ``register_cache(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "register_cache"
    return isinstance(func, ast.Name) and func.id == "register_cache"


def _is_empty_mutable_value(node: ast.expr) -> bool:
    """True for ``{}``, ``[]``, ``dict()``, ``WeakKeyDictionary()``, ...

    Only *empty* containers count: a container born empty at module level
    exists to be filled at runtime, which makes it a cache.  Tables built in
    full at import time are read-only by repository convention.
    """
    if isinstance(node, ast.Dict):
        return not node.keys
    if isinstance(node, (ast.List, ast.Set)):
        return not node.elts
    if isinstance(node, ast.Call) and not node.args and not node.keywords:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in MUTABLE_CONSTRUCTORS
    return False


def _module_level_bindings(tree: ast.Module) -> Iterator[Tuple[str, ast.expr, int]]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                yield target.id, stmt.value, stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                yield stmt.target.id, stmt.value, stmt.lineno


def check_file(path: Path, relative: "str | None" = None) -> List[Finding]:
    if relative is None:
        relative = path.relative_to(SRC_ROOT).as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    findings: List[Finding] = []

    for node in ast.walk(tree):
        # object.__setattr__(...) outside the allowed lifecycle modules.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
            and relative not in SETATTR_ALLOWED
        ):
            findings.append(
                (
                    relative,
                    node.lineno,
                    "frozen-mutation",
                    "object.__setattr__ mutates a frozen (possibly shared, "
                    "hash-consed) node; only the node-lifecycle modules may",
                )
            )
        # Imports of the differential-testing-only legacy solver.
        if relative in LEGACY_IMPORT_ALLOWED:
            pass
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.solver.legacy") or (
                module == "repro.solver" and any(a.name == "legacy" for a in node.names)
            ):
                findings.append(
                    (
                        relative,
                        node.lineno,
                        "legacy-import",
                        "repro.solver.legacy is for differential tests only; "
                        "import repro.solver",
                    )
                )
        elif isinstance(node, ast.Import):
            if any(alias.name.startswith("repro.solver.legacy") for alias in node.names):
                findings.append(
                    (
                        relative,
                        node.lineno,
                        "legacy-import",
                        "repro.solver.legacy is for differential tests only; "
                        "import repro.solver",
                    )
                )

    # Module-level mutable bindings that bypass the cache registry.
    allowed_names = MUTABLE_ALLOWED.get(relative, set())
    for name, value, lineno in _module_level_bindings(tree):
        if name in allowed_names or name == "__all__":
            continue
        if _is_register_cache_call(value):
            continue
        if _is_empty_mutable_value(value):
            findings.append(
                (
                    relative,
                    lineno,
                    "unregistered-mutable",
                    f"module-level mutable binding {name!r} is shared across "
                    "worker threads; register it via caches.register_cache "
                    "or add it to the allowlist with a written justification",
                )
            )
    return findings


def check_tree(root: Path = SRC_ROOT) -> List[Finding]:
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(check_file(path))
    return findings


def main() -> int:
    if not SRC_ROOT.is_dir():
        print(f"check_invariants: no src/ directory under {REPO_ROOT}", file=sys.stderr)
        return 2
    findings = check_tree()
    for path, lineno, code, message in findings:
        print(f"src/{path}:{lineno}: [{code}] {message}")
    if findings:
        print(f"check_invariants: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
